// Package circuit defines the gate-level intermediate representation used
// throughout PAQOC: circuits over physical qubits, the gate dependence DAG,
// and utilities for depth, unitaries, and (de)serialization.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

// Gate is one gate application. For controlled gates the control qubit(s)
// come first in Qubits. Symbolic parameters (for parameterized circuits,
// §III-A) carry a label in Symbol and are excluded from unitary
// construction until bound.
type Gate struct {
	Name   string
	Qubits []int
	Params []float64
	Symbol string // e.g. "theta1"; empty for concrete gates
}

// Clone returns a deep copy of the gate.
func (g Gate) Clone() Gate {
	out := Gate{Name: g.Name, Symbol: g.Symbol}
	out.Qubits = append([]int(nil), g.Qubits...)
	out.Params = append([]float64(nil), g.Params...)
	return out
}

// Arity returns the number of qubits the gate acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// IsSymbolic reports whether the gate has an unbound symbolic parameter.
func (g Gate) IsSymbolic() bool { return g.Symbol != "" }

// Label returns the miner node label (§III-A): the operation name plus a
// symbolic or concrete angle rendering, so that rz(π/4) and rz(π/2) get
// distinct labels while rz(θ) stays symbolic across instances.
func (g Gate) Label() string {
	if g.Symbol != "" {
		return g.Name + "(" + g.Symbol + ")"
	}
	if len(g.Params) == 0 {
		return g.Name
	}
	parts := make([]string, len(g.Params))
	for i, p := range g.Params {
		parts[i] = fmt.Sprintf("%.6g", p)
	}
	return g.Name + "(" + strings.Join(parts, ",") + ")"
}

// String renders the gate in the text format, e.g. "cx 0 3" or "rz(1.5708) 2".
func (g Gate) String() string {
	qs := make([]string, len(g.Qubits))
	for i, q := range g.Qubits {
		qs[i] = fmt.Sprint(q)
	}
	return g.Label() + " " + strings.Join(qs, " ")
}

// Unitary returns the gate's unitary matrix; symbolic gates and unknown
// names yield an error.
func (g Gate) Unitary() (*linalg.Matrix, error) {
	if g.IsSymbolic() {
		return nil, fmt.Errorf("circuit: gate %s has unbound symbol %q", g.Name, g.Symbol)
	}
	return quantum.GateUnitary(g.Name, g.Params)
}

// Circuit is an ordered list of gates over NumQubits physical qubits. The
// list order is a valid linear extension of the dependence DAG.
type Circuit struct {
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit { return &Circuit{NumQubits: n} }

// Add appends a gate, validating qubit indices and arity.
func (c *Circuit) Add(name string, qubits ...int) *Circuit {
	return c.AddGate(Gate{Name: name, Qubits: qubits})
}

// AddParam appends a parameterized gate.
func (c *Circuit) AddParam(name string, params []float64, qubits ...int) *Circuit {
	return c.AddGate(Gate{Name: name, Qubits: qubits, Params: params})
}

// AddSymbolic appends a gate with a named unbound parameter.
func (c *Circuit) AddSymbolic(name, symbol string, qubits ...int) *Circuit {
	return c.AddGate(Gate{Name: name, Qubits: qubits, Symbol: symbol})
}

// AddGate appends a pre-built gate after validation.
func (c *Circuit) AddGate(g Gate) *Circuit {
	if want := quantum.GateArity(g.Name); want != 0 && want != len(g.Qubits) {
		panic(fmt.Sprintf("circuit: gate %s wants %d qubits, got %d", g.Name, want, len(g.Qubits)))
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 || q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
		}
		if seen[q] {
			panic(fmt.Sprintf("circuit: duplicate qubit %d in gate %s", q, g.Name))
		}
		seen[q] = true
	}
	c.Gates = append(c.Gates, g)
	return c
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = g.Clone()
	}
	return out
}

// Bind returns a copy with symbolic parameters substituted from the map.
// Unresolved symbols are left in place.
func (c *Circuit) Bind(values map[string]float64) *Circuit {
	out := c.Clone()
	for i := range out.Gates {
		g := &out.Gates[i]
		if g.Symbol == "" {
			continue
		}
		if v, ok := values[g.Symbol]; ok {
			g.Params = []float64{v}
			g.Symbol = ""
		}
	}
	return out
}

// CountByArity returns the number of 1-, 2-, and 3-qubit gates.
func (c *Circuit) CountByArity() (oneQ, twoQ, threeQ int) {
	for _, g := range c.Gates {
		switch g.Arity() {
		case 1:
			oneQ++
		case 2:
			twoQ++
		case 3:
			threeQ++
		}
	}
	return
}

// Depth returns the circuit depth (longest chain of dependent gates,
// counting each gate as one level).
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		mx := 0
		for _, q := range g.Qubits {
			if level[q] > mx {
				mx = level[q]
			}
		}
		mx++
		for _, q := range g.Qubits {
			level[q] = mx
		}
		if mx > depth {
			depth = mx
		}
	}
	return depth
}

// UsedQubits returns the sorted set of qubits touched by any gate.
func (c *Circuit) UsedQubits() []int {
	set := make(map[int]bool)
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			set[q] = true
		}
	}
	out := make([]int, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Unitary computes the full-circuit unitary. It refuses circuits over more
// than maxQubits qubits (the dimension grows as 2^n); pass e.g. 10.
func (c *Circuit) Unitary(maxQubits int) (*linalg.Matrix, error) {
	if c.NumQubits > maxQubits {
		return nil, fmt.Errorf("circuit: %d qubits exceeds unitary cap %d", c.NumQubits, maxQubits)
	}
	ops := make([]quantum.EmbeddedOp, 0, len(c.Gates))
	for _, g := range c.Gates {
		u, err := g.Unitary()
		if err != nil {
			return nil, err
		}
		ops = append(ops, quantum.EmbeddedOp{U: u, Wires: g.Qubits})
	}
	return quantum.SequenceUnitary(c.NumQubits, ops), nil
}

// String renders the circuit in the text format accepted by Parse.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qubits %d\n", c.NumQubits)
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Compact remaps the circuit onto its used qubits only (preserving order),
// returning the narrowed circuit and the old→new qubit mapping. Useful for
// simulating routed circuits whose device register is much wider than the
// set of touched wires.
func (c *Circuit) Compact() (*Circuit, map[int]int) {
	used := c.UsedQubits()
	remap := make(map[int]int, len(used))
	for i, q := range used {
		remap[q] = i
	}
	n := len(used)
	if n == 0 {
		n = 1
	}
	out := New(n)
	for _, g := range c.Gates {
		ng := g.Clone()
		for i, q := range ng.Qubits {
			ng.Qubits[i] = remap[q]
		}
		out.AddGate(ng)
	}
	return out, remap
}
