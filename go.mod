module paqoc

go 1.22
