// Package repro_test hosts the top-level benchmark harness: one testing.B
// per table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index) plus ablation benchmarks for the design knobs.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-iteration work of each benchmark is one full regeneration of the
// corresponding artifact (on the fast representative subset where the full
// 17-benchmark sweep would dominate; cmd/paqoc-bench runs the full sweeps).
package repro_test

import (
	"context"
	"io"
	"testing"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/experiments"
	"paqoc/internal/grape"
	"paqoc/internal/latency"
	"paqoc/internal/noise"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/topology"
)

func subset(b *testing.B, names ...string) []bench.Spec {
	b.Helper()
	var specs []bench.Spec
	for _, n := range names {
		s, ok := bench.ByName(n)
		if !ok {
			b.Fatalf("missing benchmark %s", n)
		}
		specs = append(specs, s)
	}
	return specs
}

var fastFive = []string{"rd32_270", "bv", "qaoa", "simon", "qft"}

// BenchmarkTableIInventory regenerates the benchmark inventory.
func BenchmarkTableIInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI()
		if len(rows) != 17 {
			b.Fatal("bad inventory")
		}
	}
}

// BenchmarkFig2MergedVsSeparate regenerates the motivating GRAPE example.
func BenchmarkFig2MergedVsSeparate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if r.MergedLatency >= r.HLatency+r.CXLatency {
			b.Fatal("Fig. 2 shape lost")
		}
	}
}

// BenchmarkFig6Observations regenerates the §III-B latency study.
func BenchmarkFig6Observations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(30)
		if err != nil {
			b.Fatal(err)
		}
		if r.BelowDiagonal < len(r.Points)*99/100 {
			b.Fatal("Observation 1 lost")
		}
	}
}

func sweepOnce(b *testing.B) []experiments.BenchRow {
	b.Helper()
	rows, err := experiments.DefaultPlatform().RunAll(subset(b, fastFive...))
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkFig10Latency regenerates the latency comparison.
func BenchmarkFig10Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweepOnce(b)
		experiments.Fig10(io.Discard, rows)
	}
}

// BenchmarkFig11Compile regenerates the compilation-time comparison.
func BenchmarkFig11Compile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweepOnce(b)
		experiments.Fig11(io.Discard, rows)
	}
}

// BenchmarkFig12ESP regenerates the ESP comparison.
func BenchmarkFig12ESP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweepOnce(b)
		experiments.Fig12(io.Discard, rows)
	}
}

// BenchmarkFig13DepthLuck regenerates the fixed-depth partitioning study.
func BenchmarkFig13DepthLuck(b *testing.B) {
	p := experiments.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(p)
		if err != nil {
			b.Fatal(err)
		}
		if r.CapturedN3D3 <= r.CapturedN3D5 {
			b.Fatal("Fig. 13 shape lost")
		}
	}
}

// BenchmarkFig14Scaling regenerates the compile-time scaling study.
func BenchmarkFig14Scaling(b *testing.B) {
	p := experiments.DefaultPlatform()
	specs := subset(b, "rd32_270", "4gt10-v1_81", "hwb4_49", "ham7_104", "majority_239")
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(p, specs)
		if err != nil {
			b.Fatal(err)
		}
		if r.Slope <= 0 {
			b.Fatal("scaling shape lost")
		}
	}
}

// BenchmarkTableIIFidelity regenerates the pulse-simulation fidelity table.
func BenchmarkTableIIFidelity(b *testing.B) {
	p := experiments.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIIMiner regenerates the frequent-subcircuit showcase.
func BenchmarkTableIIIMiner(b *testing.B) {
	p := experiments.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("missing showcase rows")
		}
	}
}

// ─────────────────────────── Ablations ───────────────────────────
// Design-choice benchmarks called out in DESIGN.md. Each reports the
// compile wall time of the configuration; correctness deltas are asserted
// in the unit tests.

func compileQaoa(b *testing.B, mutate func(*paqoc.Config)) {
	b.Helper()
	p := experiments.DefaultPlatform()
	spec, _ := bench.ByName("qaoa")
	phys, err := p.Physical(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := paqoc.DefaultConfig()
		cfg.ProbeCaseII = false
		mutate(&cfg)
		comp := paqoc.New(nil, p.Topo, cfg)
		if _, err := comp.CompileCtx(context.Background(), phys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAPAKnob compares the M knob settings.
func BenchmarkAblationAPAKnob(b *testing.B) {
	b.Run("m0", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.M = 0 }) })
	b.Run("minf", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.M = paqoc.MInf }) })
}

// BenchmarkAblationTopK compares the per-iteration merge width (§V-A2).
func BenchmarkAblationTopK(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run(benchName("topk", k), func(b *testing.B) {
			compileQaoa(b, func(c *paqoc.Config) { c.TopK = k })
		})
	}
}

// BenchmarkAblationCriticality compares Case III pruning on/off (§V-A1).
func BenchmarkAblationCriticality(b *testing.B) {
	b.Run("pruned", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.PruneCaseIII = true }) })
	b.Run("unpruned", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.PruneCaseIII = false }) })
}

// BenchmarkAblationMaxN compares customized-gate width caps.
func BenchmarkAblationMaxN(b *testing.B) {
	for _, n := range []int{2, 3} {
		n := n
		b.Run(benchName("maxn", n), func(b *testing.B) {
			compileQaoa(b, func(c *paqoc.Config) { c.MaxN = n })
		})
	}
}

// BenchmarkAblationCommute measures the commutativity extension (§VII
// future work) on and off.
func BenchmarkAblationCommute(b *testing.B) {
	b.Run("on", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.Commute = true }) })
	b.Run("off", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.Commute = false }) })
}

// BenchmarkAblationProbeCaseII measures the §V-A probing cost.
func BenchmarkAblationProbeCaseII(b *testing.B) {
	b.Run("probe", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.ProbeCaseII = true }) })
	b.Run("model", func(b *testing.B) { compileQaoa(b, func(c *paqoc.Config) { c.ProbeCaseII = false }) })
}

// BenchmarkAblationPulseDB measures the pulse database's effect (§V-B):
// with the DB disabled, every customized gate pays full generation cost.
func BenchmarkAblationPulseDB(b *testing.B) {
	p := experiments.DefaultPlatform()
	spec, _ := bench.ByName("qaoa")
	phys, err := p.Physical(spec)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, db bool) {
		for i := 0; i < b.N; i++ {
			gen := latency.NewModel()
			gen.Topo = p.Topo
			if !db {
				gen.DB = nil
			}
			cfg := paqoc.DefaultConfig()
			cfg.ProbeCaseII = false
			comp := paqoc.New(gen, p.Topo, cfg)
			if _, err := comp.CompileCtx(context.Background(), phys); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("with-db", func(b *testing.B) { run(b, true) })
	b.Run("no-db", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPermutationDetection measures §V-B's permuted-qubit
// lookup.
func BenchmarkAblationPermutationDetection(b *testing.B) {
	run := func(b *testing.B, detect bool) {
		db := pulse.NewDB()
		db.DetectPermutations = detect
		m := latency.NewModel()
		m.DB = db
		m.Topo = topology.Grid(5, 5)
		p := experiments.DefaultPlatform()
		spec, _ := bench.ByName("bv")
		phys, err := p.Physical(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := paqoc.DefaultConfig()
			cfg.ProbeCaseII = false
			comp := paqoc.New(m, p.Topo, cfg)
			if _, err := comp.CompileCtx(context.Background(), phys); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("detect", func(b *testing.B) { run(b, true) })
	b.Run("exact-only", func(b *testing.B) { run(b, false) })
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v < 10 {
		return prefix + "-" + digits[v:v+1]
	}
	return prefix + "-" + digits[v/10:v/10+1] + digits[v%10:v%10+1]
}

// BenchmarkParallelEmit measures the worker-pool pulse emission (the
// internal/engine fan-out) against the serial pipeline on a GRAPE-backed
// compile: 10 disjoint two-qubit blocks on the 5×5 grid, 8 distinct
// unitaries plus 2 adjacent duplicates so the singleflight dedup path is
// exercised under overlap (reported as dedups/op). The blocks mix rotation
// axes and entanglers so their unitaries sit outside the warm-start
// similarity radius: the serial/parallel comparison then isolates the
// fan-out itself rather than the order-dependent warm starts.
// EXPERIMENTS.md records measured speedups.
func BenchmarkParallelEmit(b *testing.B) {
	topo := topology.Grid(5, 5)
	// Ten disjoint horizontally adjacent pairs: (5r,5r+1), (5r+2,5r+3).
	// Duplicates are adjacent in block order (0=1, 8=9) so they are in
	// flight together for any workers ≥ 2.
	specs := []struct {
		axis  string
		theta float64
		ent   string
	}{
		{"rx", 0.30, "cx"}, {"rx", 0.30, "cx"},
		{"ry", 0.64, "cx"}, {"rz", 0.81, "cx"},
		{"rx", 0.98, "cz"}, {"ry", 1.15, "cz"},
		{"rz", 1.32, "cz"}, {"ry", 1.49, "cx"},
		{"rx", 1.66, "cz"}, {"rx", 1.66, "cz"},
	}
	c := circuit.New(25)
	for i, s := range specs {
		r, off := i/2, (i%2)*2
		q := 5*r + off
		c.AddParam(s.axis, []float64{s.theta}, q)
		c.Add(s.ent, q, q+1)
	}
	run := func(b *testing.B, workers int) {
		var dedups int64
		for i := 0; i < b.N; i++ {
			gen := grape.NewGenerator(grape.Options{
				MaxIter:        60,
				TargetFidelity: 0.95,
				MaxSlices:      64,
			})
			gen.Topo = topo
			cfg := paqoc.DefaultConfig()
			cfg.MaxN = 2
			cfg.M = 0
			cfg.ProbeCaseII = false
			cfg.FidelityTarget = 0.95
			cfg.Workers = workers
			comp := paqoc.New(gen, topo, cfg)
			res, err := comp.CompileCtx(context.Background(), c)
			if err != nil {
				b.Fatal(err)
			}
			if res.NumBlocks < 8 {
				b.Fatalf("only %d blocks, want ≥ 8 customized gates", res.NumBlocks)
			}
			dedups += gen.DB.Dedups()
		}
		b.ReportMetric(float64(dedups)/float64(b.N), "dedups/op")
	}
	b.Run("workers-1", func(b *testing.B) { run(b, 1) })
	b.Run("workers-4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkCrossBackend runs the full method sweep on a non-default device
// profile end to end — routing on the heavy-hex topology, profile-derived
// control bounds in the latency model, and a fingerprint-namespaced pulse
// DB. CI runs it at -benchtime=1x as the cross-backend smoke test.
func BenchmarkCrossBackend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Backends([]string{"heavy-hex"}, []string{"rd32_270"}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 || rows[0].Fingerprint == "" {
			b.Fatalf("bad backend rows: %+v", rows)
		}
		for _, row := range rows[0].Rows {
			for _, m := range row.Results {
				if m.Latency <= 0 || m.ESP <= 0 || m.ESP > 1 {
					b.Fatalf("%s/%s: implausible result %+v", row.Bench, m.Method, m)
				}
			}
		}
	}
}

// BenchmarkTableIINoisy regenerates the density-matrix Table II.
func BenchmarkTableIINoisy(b *testing.B) {
	p := experiments.DefaultPlatform()
	params := noise.NISQDefaults()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIINoisy(p, params)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}
