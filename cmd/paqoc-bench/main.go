// Command paqoc-bench regenerates the paper's evaluation artifacts: every
// figure and table of §VI has a named experiment.
//
// Usage:
//
//	paqoc-bench -list
//	paqoc-bench fig2|fig6|fig10|fig11|fig12|fig13|fig14|table1|table2|table3|kernels|pulsedb|all
//
// The -benches flag restricts the Fig. 10–12/14 sweeps to a comma-separated
// subset (the full 17-benchmark sweep takes a couple of minutes, dominated
// by dnn). -csv emits Fig. 6's scatter points instead of the summary.
//
// -json <file> additionally writes machine-readable per-benchmark records
// (benchmark, method, latency, compile wall time, fidelity/ESP) plus a
// snapshot of the pipeline metrics registry, for the sweep-based
// experiments (fig10/fig11/fig12/fig14/all).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"paqoc/internal/bench"
	"paqoc/internal/device"
	"paqoc/internal/experiments"
	"paqoc/internal/noise"
	"paqoc/internal/obs"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list benchmarks and experiments")
		benches  = flag.String("benches", "", "comma-separated benchmark subset for fig10/11/12/14")
		csv      = flag.Bool("csv", false, "emit CSV scatter data (fig6)")
		limit    = flag.Int("fig6limit", 0, "cap the number of suite circuits used by fig6 (0 = all 150)")
		jsonOut  = flag.String("json", "", "write machine-readable per-benchmark results (sweep experiments) to this file")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "per-benchmark sweep worker pool size (1 = serial)")
		backend  = flag.String("backend", "", "device profile for the sweeps (default: the paper's xy-grid-5x5)")
		backends = flag.String("backends", "", "comma-separated device profiles for the backends experiment (default: every registered profile)")

		mineRounds = flag.Int("mine-rounds", 6, "rounds of workload replay for the mining experiment")
		mineBudget = flag.Int("mine-budget", 64, "patterns pre-generated per idle window in the mining experiment")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments: fig2 fig6 fig10 fig11 fig12 fig13 fig14 table1 table2 table2noisy table2full table3 ablate kernels pulsedb mining backends all")
		fmt.Println("backends:")
		for _, name := range device.Names() {
			prof, _ := device.Lookup(name)
			fmt.Printf("  %-16s %s (%d qubits)\n", name, prof.Description, prof.Topology().NumQubits)
		}
		fmt.Println("benchmarks:")
		for _, s := range bench.All() {
			fmt.Printf("  %-16s %s (%d qubits)\n", s.Name, s.Description, s.Qubits)
		}
		return
	}
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: paqoc-bench [flags] <experiment>; try -list"))
	}

	p := experiments.DefaultPlatform()
	if *backend != "" {
		prof, err := device.Lookup(*backend)
		check(err)
		p = experiments.PlatformFor(prof)
	}
	p.Workers = *workers
	if *jsonOut != "" {
		// Metrics only: the sweep needs counters for the JSON export, and a
		// tracer would accumulate one span per generated pulse across the
		// whole suite.
		p.Obs = &obs.Obs{Metrics: obs.NewRegistry()}
	}
	specs := selectBenches(*benches)
	out := os.Stdout

	// jsonRows captures the per-benchmark sweep whenever one runs, feeding
	// the -json export after the human-readable output. kernelRecs does the
	// same for the kernels experiment (its own schema).
	var jsonRows []experiments.BenchRow
	var kernelRecs []experiments.KernelRecord
	var pulseDBRecs []experiments.PulseDBRecord
	var miningRecs []experiments.MiningRecord

	var run func(string)
	run = func(name string) {
		switch name {
		case "fig2":
			r, err := experiments.Fig2()
			check(err)
			r.Print(out)
		case "fig6":
			r, err := experiments.Fig6(*limit)
			check(err)
			if *csv {
				r.CSV(out)
			} else {
				r.Print(out)
			}
		case "fig10", "fig11", "fig12":
			rows, err := p.RunAll(specs)
			check(err)
			jsonRows = rows
			switch name {
			case "fig10":
				experiments.Fig10(out, rows)
			case "fig11":
				experiments.Fig11(out, rows)
			case "fig12":
				experiments.Fig12(out, rows)
			}
		case "fig13":
			r, err := experiments.Fig13(p)
			check(err)
			r.Print(out)
		case "fig14":
			r, err := experiments.Fig14(p, specs)
			check(err)
			r.Print(out)
		case "table1":
			experiments.PrintTableI(out, experiments.TableI())
		case "table2":
			rows, err := experiments.TableII(p)
			check(err)
			experiments.PrintTableII(out, rows)
		case "table2noisy":
			rows, err := experiments.TableIINoisy(p, noise.NISQDefaults())
			check(err)
			experiments.PrintTableIINoisy(out, rows)
		case "table2full":
			rows, err := experiments.TableIIFull(p, experiments.TableIIBenches, 0)
			check(err)
			experiments.PrintTableIIFull(out, rows)
		case "ablate":
			target := "qaoa"
			if len(specs) > 0 && *benches != "" {
				target = specs[0].Name
			}
			rows, err := p.Ablation(target)
			check(err)
			experiments.PrintAblation(out, target, rows)
		case "table3":
			rows, err := experiments.TableIII(p)
			check(err)
			experiments.PrintTableIII(out, rows)
		case "kernels":
			kernelRecs = experiments.Kernels()
			experiments.PrintKernels(out, kernelRecs)
		case "pulsedb":
			pulseDBRecs = experiments.PulseDB()
			experiments.PrintPulseDB(out, pulseDBRecs)
		case "mining":
			var err error
			miningRecs, err = experiments.MiningReplay(*mineRounds, *mineBudget)
			check(err)
			experiments.PrintMiningReplay(out, miningRecs)
		case "backends":
			var names, benchNames []string
			if *backends != "" {
				names = splitCSV(*backends)
			}
			if *benches != "" {
				benchNames = splitCSV(*benches)
			}
			rows, err := experiments.Backends(names, benchNames, *workers)
			check(err)
			experiments.PrintBackends(out, rows)
		case "all":
			for _, n := range []string{"table1", "fig2", "fig6"} {
				run(n)
				fmt.Fprintln(out)
			}
			// One sweep serves Figs. 10–12 and 14.
			rows, err := p.RunAll(specs)
			check(err)
			jsonRows = rows
			experiments.Fig10(out, rows)
			fmt.Fprintln(out)
			experiments.Fig11(out, rows)
			fmt.Fprintln(out)
			experiments.Fig12(out, rows)
			fmt.Fprintln(out)
			for _, n := range []string{"fig13", "fig14", "table2", "table3"} {
				run(n)
				fmt.Fprintln(out)
			}
		default:
			fatal(fmt.Errorf("unknown experiment %q; try -list", name))
		}
	}

	// Figs. 10–12 share one sweep when invoked via "all"; running them
	// individually is simpler and still correct, so keep it direct.
	run(flag.Arg(0))

	if *jsonOut != "" {
		switch {
		case kernelRecs != nil:
			if err := writeKernelJSON(*jsonOut, kernelRecs); err != nil {
				fatal(err)
			}
		case pulseDBRecs != nil:
			if err := writePulseDBJSON(*jsonOut, pulseDBRecs); err != nil {
				fatal(err)
			}
		case miningRecs != nil:
			if err := writeMiningJSON(*jsonOut, miningRecs); err != nil {
				fatal(err)
			}
		case jsonRows != nil:
			if err := writeBenchJSON(*jsonOut, jsonRows, p.Obs); err != nil {
				fatal(err)
			}
		default:
			fmt.Fprintf(os.Stderr, "paqoc-bench: -json applies to sweep experiments (fig10/fig11/fig12/all), kernels, pulsedb, and mining; nothing to write for %q\n", flag.Arg(0))
			return
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}
}

// writePulseDBJSON emits the sharded pulse-store benchmark records (the
// BENCH_005.json artifact).
func writePulseDBJSON(path string, recs []experiments.PulseDBRecord) error {
	doc := struct {
		Schema  string                      `json:"schema"`
		Results []experiments.PulseDBRecord `json:"results"`
	}{Schema: "paqoc-bench/pulsedb/v1", Results: recs}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeMiningJSON emits the offline-mining replay records (the
// BENCH_009.json artifact).
func writeMiningJSON(path string, recs []experiments.MiningRecord) error {
	doc := struct {
		Schema  string                     `json:"schema"`
		Results []experiments.MiningRecord `json:"results"`
	}{Schema: "paqoc-bench/mining/v1", Results: recs}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeKernelJSON emits the destination-passing kernel benchmark records
// (the BENCH_003.json artifact).
func writeKernelJSON(path string, recs []experiments.KernelRecord) error {
	doc := struct {
		Schema  string                     `json:"schema"`
		Results []experiments.KernelRecord `json:"results"`
	}{Schema: "paqoc-bench/kernels/v1", Results: recs}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// benchRecord is one (benchmark, method) result in the -json export.
type benchRecord struct {
	Bench         string  `json:"bench"`
	Method        string  `json:"method"`
	LatencyDt     float64 `json:"latency_dt"`
	TotalDt       float64 `json:"total_latency_dt"`
	CompileCostS  float64 `json:"compile_cost_s"`
	CompileWallMs float64 `json:"compile_wall_ms"`
	Fidelity      float64 `json:"fidelity"` // circuit ESP, Eq. (2)
	NumBlocks     int     `json:"num_blocks"`
}

// stageQuantiles is the per-pipeline-stage latency distribution summary of
// the -json export: p50/p90/p99 interpolated from the shared
// paqoc.stage_ms quantile histogram, so BENCH files capture distributions,
// not just means.
type stageQuantiles struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// collectStageQuantiles pulls the per-stage quantiles out of a snapshot.
func collectStageQuantiles(snap *obs.Snapshot) []stageQuantiles {
	fam, ok := snap.HistogramVecs[obs.StageMetric]
	if !ok {
		return nil
	}
	var out []stageQuantiles
	for _, se := range fam.Series {
		if se.Count == 0 || len(se.Values) == 0 {
			continue
		}
		out = append(out, stageQuantiles{
			Stage: se.Values[0],
			Count: se.Count,
			P50Ms: se.P50,
			P90Ms: se.P90,
			P99Ms: se.P99,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// writeBenchJSON emits the machine-readable sweep results alongside the
// pipeline metrics snapshot accumulated across all compiled methods.
func writeBenchJSON(path string, rows []experiments.BenchRow, o *obs.Obs) error {
	var records []benchRecord
	for _, row := range rows {
		for _, m := range row.Results {
			records = append(records, benchRecord{
				Bench:         row.Bench,
				Method:        m.Method,
				LatencyDt:     m.Latency,
				TotalDt:       m.TotalLatency,
				CompileCostS:  m.CompileCost,
				CompileWallMs: float64(m.WallTime.Microseconds()) / 1e3,
				Fidelity:      m.ESP,
				NumBlocks:     m.NumBlocks,
			})
		}
	}
	doc := struct {
		Schema  string           `json:"schema"`
		Results []benchRecord    `json:"results"`
		Stages  []stageQuantiles `json:"stage_quantiles,omitempty"`
		Metrics *obs.Snapshot    `json:"metrics,omitempty"`
	}{Schema: "paqoc-bench/v1", Results: records}
	if o != nil {
		doc.Metrics = o.Metrics.Snapshot()
		doc.Stages = collectStageQuantiles(doc.Metrics)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// splitCSV trims a comma-separated flag value into its non-empty fields.
func splitCSV(csv string) []string {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func selectBenches(csv string) []bench.Spec {
	if csv == "" {
		return bench.All()
	}
	var out []bench.Spec
	for _, name := range strings.Split(csv, ",") {
		s, ok := bench.ByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", name))
		}
		out = append(out, s)
	}
	return out
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paqoc-bench:", err)
	os.Exit(1)
}
