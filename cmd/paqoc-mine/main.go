// Command paqoc-mine runs the frequent-subcircuits miner on a circuit and
// prints the discovered APA-basis gate candidates (Table III style).
//
// Usage:
//
//	paqoc-mine [flags] <circuit-file>
//	paqoc-mine [flags] -bench <name>
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/mining"
	"paqoc/internal/route"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "mine a built-in Table I benchmark")
		maxGates   = flag.Int("maxgates", 6, "pattern size cap")
		maxQubits  = flag.Int("maxqubits", 3, "pattern width cap")
		minSupport = flag.Int("minsupport", 2, "minimum disjoint occurrences")
		top        = flag.Int("top", 5, "patterns to print")
		physical   = flag.Bool("physical", true, "route onto the 5x5 grid before mining (mine the physical circuit, as PAQOC does)")
	)
	flag.Parse()

	var c *circuit.Circuit
	var err error
	if *benchName != "" {
		spec, ok := bench.ByName(*benchName)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *benchName))
		}
		c = spec.Build()
	} else if flag.NArg() == 1 {
		data, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fatal(rerr)
		}
		c, err = circuit.Parse(string(data))
		if err != nil {
			fatal(err)
		}
	} else {
		fatal(fmt.Errorf("usage: paqoc-mine [flags] <circuit-file> | paqoc-mine -bench <name>"))
	}

	if *physical {
		phys, _, terr := transpile.ToPhysical(c, topology.Grid(5, 5), route.DefaultOptions())
		if terr != nil {
			fatal(terr)
		}
		c = phys
	}

	opts := mining.Options{MaxGates: *maxGates, MaxQubits: *maxQubits, MinSupport: *minSupport}
	patterns, err := mining.MineCtx(context.Background(), c, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d gates, %d frequent patterns (support ≥ %d)\n", len(c.Gates), len(patterns), *minSupport)
	for i, p := range patterns {
		if i >= *top {
			break
		}
		fmt.Printf("#%d  support %-3d coverage %-4d gates %-2d qubits %d\n    %s\n",
			i+1, p.Support, p.Coverage(), p.GateCount, p.QubitCount, p.Signature)
	}
	m := mining.TunedM(c, patterns, *minSupport)
	fmt.Printf("tuned M (APA majority point): %d\n", m)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paqoc-mine:", err)
	os.Exit(1)
}
