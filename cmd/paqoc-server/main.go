// Command paqoc-server runs the PAQOC pulse-compilation service: a
// resident HTTP process with a bounded job queue, a compilation worker
// pool, and a warm pulse database shared across every request — loaded
// from -db at startup, snapshotted periodically, and persisted on
// shutdown.
//
// Usage:
//
//	paqoc-server -addr :8080 -db pulses.db
//
// Endpoints: POST /v1/compile, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events
// (live SSE job stream), GET /v1/mining/status (when -mine-interval > 0),
// GET /healthz, GET /readyz, and GET /metrics
// (JSON; ?format=text for a table, ?format=prom for Prometheus text
// exposition). The unauthenticated /debug/pprof
// endpoints are not on the API mux; -pprof <addr> serves them on a
// separate (loopback) listener. See the README's "Running the service"
// section for curl examples.
//
// On SIGTERM or SIGINT the server stops accepting work (readyz flips to
// 503 so load balancers drain it), finishes queued and in-flight jobs
// within -drain, cancels stragglers, saves the pulse database
// crash-safely, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"paqoc/internal/device"
	"paqoc/internal/obs"
	"paqoc/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paqoc-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		dbPath    = flag.String("db", "", "pulse-database file: loaded at startup, snapshotted periodically and on shutdown")
		dbMax     = flag.Int("db-max-entries", 0, "bound the warm pulse DB to this many entries, evicting cold ones (0 = unbounded)")
		workers   = flag.Int("workers", 0, "concurrent compilation jobs (default GOMAXPROCS)")
		grapeWrk  = flag.Int("grape-workers", 1, "goroutines inside each GRAPE optimization's inner loop (bit-identical across counts; multiplies against -workers)")
		queue     = flag.Int("queue", 64, "bounded job-queue depth; a full queue returns 429")
		syncGates = flag.Int("sync-gates", 48, "auto-mode sync threshold in logical gates")
		timeout   = flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
		maxTO     = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
		snapshot  = flag.Duration("snapshot", 5*time.Minute, "pulse-DB snapshot interval (requires -db; <0 disables)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		backend   = flag.String("backend", device.DefaultName, "default device profile: a registered name or a dynamic one like xy-grid-3x4 (requests may override per job)")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof on this separate address (e.g. localhost:6060); empty disables")
		logLevel  = flag.String("log-level", "info", "structured-log threshold: debug, info, warn, or error")

		peers         = flag.String("peers", "", "comma-separated replica addresses (host:port of each replica's -cluster-listen) forming the warm-store replication group; empty = standalone")
		clusterListen = flag.String("cluster-listen", "", "serve the internal replication RPC on this separate (private) address; required when -peers is set")
		clusterSelf   = flag.String("cluster-self", "", "this replica's advertised address in -peers (default: -cluster-listen)")
		clusterRPCTO  = flag.Duration("cluster-timeout", 2*time.Second, "per-peer replication RPC timeout")
		tenantMax     = flag.Int("tenant-max-inflight", 0, "per-tenant cap on queued+running jobs; a tenant at the cap gets 429 (0 = unlimited)")

		mineInterval   = flag.Duration("mine-interval", 0, "offline APA mining run cadence; folds served circuits into cross-request pattern tables and pre-generates frequent patterns' pulses while the queue is idle (0 disables)")
		mineMinSupport = flag.Int("mine-min-support", 2, "miner's cross-request recurrence threshold: a pattern must occur this many times across the corpus")
		mineCorpusMax  = flag.Int("mine-corpus-max", 256, "bound on the miner's per-backend circuit corpus; past it the oldest circuit is evicted")
		mineBudget     = flag.Int("mine-budget", 4, "max pulses pre-generated per idle mining run")
	)
	flag.Parse()

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
		if *clusterListen == "" {
			return fmt.Errorf("-peers requires -cluster-listen (the private replication listener)")
		}
	}
	self := *clusterSelf
	if self == "" {
		self = *clusterListen
	}

	logger := obs.NewStderrLogger(obs.ParseLevel(*logLevel))
	srv, err := server.New(server.Config{
		Workers:           *workers,
		GrapeWorkers:      *grapeWrk,
		QueueDepth:        *queue,
		SyncGateLimit:     *syncGates,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTO,
		DBPath:            *dbPath,
		DBMaxEntries:      *dbMax,
		SnapshotInterval:  *snapshot,
		Backend:           *backend,
		Logger:            logger,
		ClusterSelf:       self,
		ClusterPeers:      peerList,
		ClusterTimeout:    *clusterRPCTO,
		TenantMaxInflight: *tenantMax,
		MineInterval:      *mineInterval,
		MineMinSupport:    *mineMinSupport,
		MineCorpusMax:     *mineCorpusMax,
		MineBudget:        *mineBudget,
	})
	if err != nil {
		return err
	}
	srv.Start()

	// pprof lives on its own listener, never the API address: the
	// profiling endpoints are unauthenticated, and -addr may be public.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %v", err)
		}
		pprofSrv := &http.Server{Handler: server.PprofHandler()}
		go func() { _ = pprofSrv.Serve(pln) }()
		defer pprofSrv.Close()
		logger.Info("pprof serving", "addr", fmt.Sprintf("http://%s/debug/pprof/", pln.Addr()))
	}

	// The replication RPC, like pprof, lives on its own listener: it is
	// unauthenticated and mutates the warm store, so it must stay on a
	// private (replica-to-replica) network, never the public API address.
	if *clusterListen != "" {
		cln, err := net.Listen("tcp", *clusterListen)
		if err != nil {
			return fmt.Errorf("cluster: %v", err)
		}
		clSrv := &http.Server{Handler: srv.ClusterHandler()}
		go func() { _ = clSrv.Serve(cln) }()
		defer clSrv.Close()
		logger.Info("cluster replication serving", "addr", cln.Addr().String(),
			"self", self, "peers", *peers)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Info("serving", "addr", fmt.Sprintf("http://%s", ln.Addr()),
		"backend", *backend, "workers", *workers, "queue", *queue, "db", *dbPath)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	logger.Info("signal received, draining", "deadline", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain connections and the job queue concurrently: finishing jobs is
	// what unblocks synchronous requests, so the two must overlap.
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Shutdown(drainCtx) }()
	jobErr := srv.Shutdown(drainCtx)
	httpErr := <-httpDone
	<-errCh
	if jobErr != nil {
		return jobErr
	}
	return httpErr
}
