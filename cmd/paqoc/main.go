// Command paqoc compiles a quantum circuit into control pulses with the
// PAQOC framework and reports latency, ESP, and the customized-gate
// grouping.
//
// Usage:
//
//	paqoc [flags] <circuit-file>        compile a circuit in the text format
//	paqoc [flags] -bench <name>         compile a built-in Table I benchmark
//
// Flags select the APA knob (-m), the group width cap (-maxn), top-k, the
// fidelity target, and whether to run real GRAPE (-grape) instead of the
// calibrated analytical model for final pulse emission. -backend picks the
// device profile (topology, control bounds, noise) from the
// internal/device registry; dynamic names like xy-grid-3x4 or
// linear-chain-8 build grids and chains of any size.
//
// Observability: -trace <file> writes a Chrome trace-event JSON of the
// pipeline spans (open at chrome://tracing or ui.perfetto.dev), -metrics
// <file> writes a JSON snapshot of all pipeline counters and histograms,
// and -pprof <addr> serves net/http/pprof for the duration of the run.
// Any of these also prints a per-stage wall-time summary on completion.
// With all three omitted the instrumentation is inert: the compile path
// pays only nil checks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/device"
	"paqoc/internal/grape"
	"paqoc/internal/mining"
	"paqoc/internal/obs"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/qasm"
	"paqoc/internal/route"
	"paqoc/internal/statevec"
	"paqoc/internal/transpile"
)

func main() {
	if err := run(); err != nil {
		fatal(err)
	}
}

func run() error {
	var (
		benchName    = flag.String("bench", "", "compile a built-in Table I benchmark instead of a file")
		mFlag        = flag.String("m", "0", "APA-basis gate budget: 0, inf, tuned, or a positive integer")
		maxN         = flag.Int("maxn", 3, "maximum qubits per customized gate")
		topK         = flag.Int("topk", 1, "merges applied per search iteration")
		fidelity     = flag.Float64("fidelity", 0.99, "per-gate fidelity target")
		useGrape     = flag.Bool("grape", false, "emit final pulses with the real GRAPE optimizer (slower)")
		backend      = flag.String("backend", device.DefaultName, "device profile: a registered name (see internal/device) or a dynamic one like xy-grid-3x4, linear-chain-8, heavy-hex-2")
		showGroups   = flag.Bool("groups", false, "print the final customized-gate grouping")
		render       = flag.Bool("render", false, "draw the physical circuit as an ASCII wire diagram")
		pulseJSON    = flag.String("pulse-json", "", "write per-block pulse schedules (requires -grape) to this file")
		verify       = flag.Bool("verify", false, "statevector-check the compiled circuit against the physical circuit")
		bidir        = flag.Int("bidir", 0, "SABRE forward-backward layout refinement passes (0 = off)")
		dbPath       = flag.String("db", "", "pulse-database file: loaded if present, saved after compiling (with -grape)")
		traceFile    = flag.String("trace", "", "write a Chrome trace-event JSON of pipeline spans to this file")
		metricsFile  = flag.String("metrics", "", "write a JSON snapshot of pipeline metrics to this file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) during the run")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "pulse-generation worker pool size (1 = serial, bit-identical to the single-threaded pipeline)")
		grapeWorkers = flag.Int("grape-workers", 1, "goroutines inside each GRAPE optimization's forward/gradient passes (requires -grape; results are bit-identical across worker counts)")
	)
	flag.Parse()

	// Observability backends. The tracer also powers the per-stage summary,
	// so it is enabled whenever any observability flag is set.
	var o *obs.Obs
	ctx := context.Background()
	if *traceFile != "" || *metricsFile != "" || *pprofAddr != "" {
		o = &obs.Obs{Tracer: obs.NewTracer()}
		if *metricsFile != "" {
			o.Metrics = obs.NewRegistry()
			preregisterMetrics(o.Metrics)
		}
		ctx = o.Attach(ctx)
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %v", err)
		}
		defer ln.Close()
		fmt.Printf("pprof:    serving on http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	logical, err := loadCircuit(*benchName, flag.Args())
	if err != nil {
		return err
	}

	prof, err := device.Lookup(*backend)
	if err != nil {
		return err
	}
	topo := prof.Topology()
	routeOpts := route.DefaultOptions()
	_, routeSpan := obs.StartSpan(ctx, "transpile.route")
	phys, routeRes, err := transpile.ToPhysical(logical, topo, routeOpts)
	routeSpan.End()
	if err != nil {
		return err
	}
	if *bidir > 0 {
		// Re-route the lowered circuit with forward-backward refinement.
		lowered, err := transpile.Decompose(logical, transpile.UniversalBasis())
		if err != nil {
			return err
		}
		refined, err := route.RouteBidirectional(lowered, topo, routeOpts, *bidir)
		if err != nil {
			return err
		}
		if refined.SwapCount < routeRes.SwapCount {
			if phys, err = transpile.Decompose(refined.Physical, transpile.UniversalBasis()); err != nil {
				return err
			}
			routeRes = refined
		}
	}

	cfg := paqoc.DefaultConfig()
	cfg.MaxN = *maxN
	cfg.TopK = *topK
	cfg.FidelityTarget = *fidelity
	cfg.ProbeCaseII = false
	cfg.Workers = *workers
	switch *mFlag {
	case "0":
		cfg.M = 0
	case "inf":
		cfg.M = paqoc.MInf
	case "tuned":
		patterns, err := mining.MineCtx(ctx, phys, mining.DefaultOptions())
		if err != nil {
			return err
		}
		cfg.M = mining.TunedM(phys, patterns, cfg.MinSupport)
		fmt.Printf("tuned M = %d\n", cfg.M)
	default:
		if _, err := fmt.Sscanf(*mFlag, "%d", &cfg.M); err != nil || cfg.M < 0 {
			return fmt.Errorf("bad -m value %q", *mFlag)
		}
	}

	var gen pulse.Generator
	var grapeGen *grape.Generator
	if *useGrape {
		gopts := grape.DefaultOptions()
		gopts.Workers = *grapeWorkers
		grapeGen = grape.NewGenerator(gopts)
		grapeGen.Topo = topo
		grapeGen.System = prof.SystemBuilder()
		grapeGen.DB.SetFingerprint(prof.Fingerprint())
		if *dbPath != "" {
			// Pinned load: a snapshot calibrated for another backend is an
			// error, not silently-wrong warm pulses.
			db, ok, err := pulse.LoadFileFor(*dbPath, prof.Fingerprint())
			if err != nil {
				return err
			}
			grapeGen.DB = db
			if ok {
				fmt.Printf("pulse DB: loaded %d entries from %s\n", db.Len(), *dbPath)
			}
		}
		gen = grapeGen
	}
	comp := paqoc.NewForProfile(gen, prof, cfg)
	if o != nil && o.Metrics != nil {
		// The pulse DB emits its own counters (nearest scan/prune split,
		// evictions) alongside the pipeline's. New defaults gen to the
		// analytical model, so wire whichever DB actually serves compiles.
		if p, ok := comp.Gen.(pulse.DBProvider); ok {
			p.PulseDB().SetMetrics(o.Metrics)
		}
	}
	res, err := comp.CompileCtx(ctx, phys)
	if err != nil {
		return err
	}
	if grapeGen != nil && *dbPath != "" {
		if err := savePulseDB(*dbPath, grapeGen); err != nil {
			return err
		}
		fmt.Printf("pulse DB: saved %d entries to %s\n", grapeGen.DB.Len(), *dbPath)
	}

	fmt.Printf("backend:  %s (%d qubits, fingerprint %s)\n", prof.Name, topo.NumQubits, prof.Fingerprint())
	fmt.Printf("input:    %d logical gates on %d qubits\n", len(logical.Gates), logical.NumQubits)
	fmt.Printf("physical: %d gates after routing (%d swaps)\n", len(phys.Gates), routeRes.SwapCount)
	fmt.Printf("output:   %d customized gates", res.NumBlocks)
	if n := len(res.APASelections); n > 0 {
		fmt.Printf(" using %d APA-basis patterns", n)
	}
	fmt.Println()
	fmt.Printf("latency:  %.0f dt (fixed-gate baseline %.0f dt, %.1f%% reduction)\n",
		res.Latency, res.InitialLatency, 100*(1-res.Latency/res.InitialLatency))
	fmt.Printf("ESP:      %.4f\n", res.ESP)
	fmt.Printf("compile:  %.2f s modelled pulse generation (%v wall)\n", res.CompileCost, res.WallTime.Round(1e6))

	if *showGroups {
		fmt.Println("\ncustomized gates:")
		for i, b := range res.Blocks.Blocks {
			tag := ""
			if b.APA {
				tag = "  [APA]"
			}
			fmt.Printf("  %3d  %6.0f dt  %s%s\n", i, b.Latency, b.Custom().Describe(), tag)
		}
	}
	if *verify {
		if err := verifyCompiled(phys, res); err != nil {
			return err
		}
		fmt.Println("verify:   compiled circuit is statevector-equivalent to the physical circuit ✓")
	}
	if *render {
		fmt.Println("\nphysical circuit:")
		fmt.Print(phys.RenderASCII())
	}
	if *pulseJSON != "" {
		if err := writeSchedules(*pulseJSON, res); err != nil {
			return err
		}
		fmt.Printf("schedules written to %s\n", *pulseJSON)
	}

	// Observability outputs: per-stage summary plus the requested exports.
	if o != nil && o.Tracer != nil {
		fmt.Println("\nper-stage summary:")
		o.Tracer.WriteSummary(os.Stdout)
		if o.Metrics != nil {
			// Pool saturation: how parallel the emit/probe stages actually ran.
			snap := o.Metrics.Snapshot()
			fmt.Printf("  engine pool: %d tasks, %d completed, peak %g active, peak %g queued\n",
				snap.Counters["engine.tasks"], snap.Counters["engine.completed"],
				snap.Gauges["engine.active_workers.peak"], snap.Gauges["engine.queued.peak"])
			// Stage latency quantiles from the shared paqoc.stage_ms histogram
			// family — interpolated from the log-spaced buckets, so p99 on a
			// single compile is really just the max observation.
			if fam, ok := snap.HistogramVecs[obs.StageMetric]; ok {
				for _, se := range fam.Series {
					if se.Count == 0 || len(se.Values) == 0 {
						continue
					}
					fmt.Printf("  stage %-14s n=%-4d p50=%.3fms p90=%.3fms p99=%.3fms\n",
						se.Values[0], se.Count, se.P50, se.P90, se.P99)
				}
			}
		}
	}
	if *traceFile != "" {
		if err := writeFileWith(*traceFile, o.Tracer.WriteChromeTrace); err != nil {
			return fmt.Errorf("trace: %v", err)
		}
		fmt.Printf("trace written to %s (open at chrome://tracing)\n", *traceFile)
	}
	if *metricsFile != "" {
		if err := writeFileWith(*metricsFile, o.Metrics.Snapshot().WriteJSON); err != nil {
			return fmt.Errorf("metrics: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsFile)
	}
	return nil
}

// preregisterMetrics creates the canonical pipeline instruments up front so
// a metrics export always carries the merge-loop, GRAPE, and simulator
// series — zero-valued when a stage did not run — giving downstream
// consumers a stable schema.
func preregisterMetrics(r *obs.Registry) {
	for _, name := range []string{
		"paqoc.merge.rounds", "paqoc.merge.candidates", "paqoc.merge.cache_hits",
		"paqoc.merge.applied", "paqoc.merge.rejected", "paqoc.merge.preprocessed",
		"paqoc.emit.blocks",
		"grape.iterations", "grape.binsearch.probes", "grape.generated",
		"grape.db_hits", "grape.db_permuted_hits", "grape.warm_starts", "grape.expm",
		"grape.probe_prop_reuse",
		"pulsesim.slices", "pulsesim.expm", "pulsesim.esp_evals", "pulsesim.esp_gates",
		"mining.subcircuits_enumerated", "mining.pruned_qubit_cap", "mining.patterns",
		"latency.model.probes", "latency.model.db_hits",
		"engine.tasks", "engine.completed", "pulse.db_dedups",
		"pulse.nearest_scanned", "pulse.nearest_pruned",
		"pulse.evictions", "pulse.save_skipped_nonfinite",
	} {
		r.Counter(name)
	}
	for _, name := range []string{
		"engine.inflight", "engine.active_workers", "engine.active_workers.peak",
		"engine.queued", "engine.queued.peak",
	} {
		r.Gauge(name)
	}
}

// writeFileWith streams fn into path, closing the file on every path and
// reporting the first error encountered.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// savePulseDB writes the generator's database crash-safely (temp file +
// rename), so an interrupted save never corrupts an existing database.
func savePulseDB(path string, g *grape.Generator) error {
	return g.DB.SaveFile(path)
}

// verifyCompiled checks, on the statevector simulator, that the compiled
// block circuit implements the same state as the physical circuit.
func verifyCompiled(phys *circuit.Circuit, res *paqoc.Result) error {
	a, _ := phys.Compact()
	b, _ := res.Blocks.Flatten().Compact()
	if a.NumQubits != b.NumQubits {
		return fmt.Errorf("verify: width mismatch %d vs %d", a.NumQubits, b.NumQubits)
	}
	if a.NumQubits > statevec.MaxQubits {
		return fmt.Errorf("verify: %d used qubits exceed the statevector limit %d", a.NumQubits, statevec.MaxQubits)
	}
	sa, err := statevec.Run(a)
	if err != nil {
		return err
	}
	sb, err := statevec.Run(b)
	if err != nil {
		return err
	}
	f, err := statevec.Fidelity(sa, sb)
	if err != nil {
		return err
	}
	if f < 1-1e-7 {
		return fmt.Errorf("verify: compiled circuit deviates, state fidelity %.9f", f)
	}
	return nil
}

// writeSchedules dumps every block's pulse schedule as a JSON array.
func writeSchedules(path string, res *paqoc.Result) error {
	type entry struct {
		Block    string          `json:"block"`
		Qubits   []int           `json:"qubits"`
		Latency  float64         `json:"latency_dt"`
		Fidelity float64         `json:"fidelity"`
		Schedule *pulse.Schedule `json:"schedule,omitempty"`
	}
	var out []entry
	for _, b := range res.Blocks.Blocks {
		e := entry{
			Block:  b.Custom().Describe(),
			Qubits: b.Qubits,
		}
		if b.Gen != nil {
			e.Latency = b.Gen.Latency
			e.Fidelity = b.Gen.Fidelity
			e.Schedule = b.Gen.Schedule
		}
		out = append(out, e)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func loadCircuit(benchName string, args []string) (*circuit.Circuit, error) {
	if benchName != "" {
		spec, ok := bench.ByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (see cmd/paqoc-bench -list)", benchName)
		}
		return spec.Build(), nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: paqoc [flags] <circuit-file> | paqoc -bench <name>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".qasm") {
		return qasm.Parse(string(data))
	}
	return circuit.Parse(string(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paqoc:", err)
	os.Exit(1)
}
