// Command paqoc compiles a quantum circuit into control pulses with the
// PAQOC framework and reports latency, ESP, and the customized-gate
// grouping.
//
// Usage:
//
//	paqoc [flags] <circuit-file>        compile a circuit in the text format
//	paqoc [flags] -bench <name>         compile a built-in Table I benchmark
//
// Flags select the APA knob (-m), the group width cap (-maxn), top-k, the
// fidelity target, and whether to run real GRAPE (-grape) instead of the
// calibrated analytical model for final pulse emission.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"paqoc/internal/bench"
	"paqoc/internal/circuit"
	"paqoc/internal/grape"
	"paqoc/internal/mining"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulse"
	"paqoc/internal/qasm"
	"paqoc/internal/route"
	"paqoc/internal/statevec"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "compile a built-in Table I benchmark instead of a file")
		mFlag      = flag.String("m", "0", "APA-basis gate budget: 0, inf, tuned, or a positive integer")
		maxN       = flag.Int("maxn", 3, "maximum qubits per customized gate")
		topK       = flag.Int("topk", 1, "merges applied per search iteration")
		fidelity   = flag.Float64("fidelity", 0.99, "per-gate fidelity target")
		useGrape   = flag.Bool("grape", false, "emit final pulses with the real GRAPE optimizer (slower)")
		gridRows   = flag.Int("rows", 5, "device grid rows")
		gridCols   = flag.Int("cols", 5, "device grid cols")
		showGroups = flag.Bool("groups", false, "print the final customized-gate grouping")
		render     = flag.Bool("render", false, "draw the physical circuit as an ASCII wire diagram")
		pulseJSON  = flag.String("pulse-json", "", "write per-block pulse schedules (requires -grape) to this file")
		verify     = flag.Bool("verify", false, "statevector-check the compiled circuit against the physical circuit")
		bidir      = flag.Int("bidir", 0, "SABRE forward-backward layout refinement passes (0 = off)")
		dbPath     = flag.String("db", "", "pulse-database file: loaded if present, saved after compiling (with -grape)")
	)
	flag.Parse()

	logical, err := loadCircuit(*benchName, flag.Args())
	if err != nil {
		fatal(err)
	}

	topo := topology.Grid(*gridRows, *gridCols)
	routeOpts := route.DefaultOptions()
	phys, routeRes, err := transpile.ToPhysical(logical, topo, routeOpts)
	if err != nil {
		fatal(err)
	}
	if *bidir > 0 {
		// Re-route the lowered circuit with forward-backward refinement.
		lowered, derr := transpile.Decompose(logical, transpile.UniversalBasis())
		if derr != nil {
			fatal(derr)
		}
		refined, rerr := route.RouteBidirectional(lowered, topo, routeOpts, *bidir)
		if rerr != nil {
			fatal(rerr)
		}
		if refined.SwapCount < routeRes.SwapCount {
			if phys, err = transpile.Decompose(refined.Physical, transpile.UniversalBasis()); err != nil {
				fatal(err)
			}
			routeRes = refined
		}
	}

	cfg := paqoc.DefaultConfig()
	cfg.MaxN = *maxN
	cfg.TopK = *topK
	cfg.FidelityTarget = *fidelity
	cfg.ProbeCaseII = false
	switch *mFlag {
	case "0":
		cfg.M = 0
	case "inf":
		cfg.M = paqoc.MInf
	case "tuned":
		patterns := mining.Mine(phys, mining.DefaultOptions())
		cfg.M = mining.TunedM(phys, patterns, cfg.MinSupport)
		fmt.Printf("tuned M = %d\n", cfg.M)
	default:
		if _, err := fmt.Sscanf(*mFlag, "%d", &cfg.M); err != nil || cfg.M < 0 {
			fatal(fmt.Errorf("bad -m value %q", *mFlag))
		}
	}

	var gen pulse.Generator
	var grapeGen *grape.Generator
	if *useGrape {
		grapeGen = grape.NewGenerator(grape.DefaultOptions())
		grapeGen.Topo = topo
		if *dbPath != "" {
			if f, oerr := os.Open(*dbPath); oerr == nil {
				db, lerr := pulse.LoadDB(f)
				f.Close()
				if lerr != nil {
					fatal(lerr)
				}
				grapeGen.DB = db
				fmt.Printf("pulse DB: loaded %d entries from %s\n", db.Len(), *dbPath)
			}
		}
		gen = grapeGen
	}
	comp := paqoc.New(gen, topo, cfg)
	res, err := comp.Compile(phys)
	if err != nil {
		fatal(err)
	}
	if grapeGen != nil && *dbPath != "" {
		f, cerr := os.Create(*dbPath)
		if cerr != nil {
			fatal(cerr)
		}
		if err := grapeGen.DB.Save(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("pulse DB: saved %d entries to %s\n", grapeGen.DB.Len(), *dbPath)
	}

	fmt.Printf("input:    %d logical gates on %d qubits\n", len(logical.Gates), logical.NumQubits)
	fmt.Printf("physical: %d gates after routing (%d swaps)\n", len(phys.Gates), routeRes.SwapCount)
	fmt.Printf("output:   %d customized gates", res.NumBlocks)
	if n := len(res.APASelections); n > 0 {
		fmt.Printf(" using %d APA-basis patterns", n)
	}
	fmt.Println()
	fmt.Printf("latency:  %.0f dt (fixed-gate baseline %.0f dt, %.1f%% reduction)\n",
		res.Latency, res.InitialLatency, 100*(1-res.Latency/res.InitialLatency))
	fmt.Printf("ESP:      %.4f\n", res.ESP)
	fmt.Printf("compile:  %.2f s modelled pulse generation (%v wall)\n", res.CompileCost, res.WallTime.Round(1e6))

	if *showGroups {
		fmt.Println("\ncustomized gates:")
		for i, b := range res.Blocks.Blocks {
			tag := ""
			if b.APA {
				tag = "  [APA]"
			}
			fmt.Printf("  %3d  %6.0f dt  %s%s\n", i, b.Latency, b.Custom().Describe(), tag)
		}
	}
	if *verify {
		if err := verifyCompiled(phys, res); err != nil {
			fatal(err)
		}
		fmt.Println("verify:   compiled circuit is statevector-equivalent to the physical circuit ✓")
	}
	if *render {
		fmt.Println("\nphysical circuit:")
		fmt.Print(phys.RenderASCII())
	}
	if *pulseJSON != "" {
		if err := writeSchedules(*pulseJSON, res); err != nil {
			fatal(err)
		}
		fmt.Printf("schedules written to %s\n", *pulseJSON)
	}
}

// verifyCompiled checks, on the statevector simulator, that the compiled
// block circuit implements the same state as the physical circuit.
func verifyCompiled(phys *circuit.Circuit, res *paqoc.Result) error {
	a, _ := phys.Compact()
	b, _ := res.Blocks.Flatten().Compact()
	if a.NumQubits != b.NumQubits {
		return fmt.Errorf("verify: width mismatch %d vs %d", a.NumQubits, b.NumQubits)
	}
	if a.NumQubits > statevec.MaxQubits {
		return fmt.Errorf("verify: %d used qubits exceed the statevector limit %d", a.NumQubits, statevec.MaxQubits)
	}
	sa, err := statevec.Run(a)
	if err != nil {
		return err
	}
	sb, err := statevec.Run(b)
	if err != nil {
		return err
	}
	f, err := statevec.Fidelity(sa, sb)
	if err != nil {
		return err
	}
	if f < 1-1e-7 {
		return fmt.Errorf("verify: compiled circuit deviates, state fidelity %.9f", f)
	}
	return nil
}

// writeSchedules dumps every block's pulse schedule as a JSON array.
func writeSchedules(path string, res *paqoc.Result) error {
	type entry struct {
		Block    string          `json:"block"`
		Qubits   []int           `json:"qubits"`
		Latency  float64         `json:"latency_dt"`
		Fidelity float64         `json:"fidelity"`
		Schedule *pulse.Schedule `json:"schedule,omitempty"`
	}
	var out []entry
	for _, b := range res.Blocks.Blocks {
		e := entry{
			Block:  b.Custom().Describe(),
			Qubits: b.Qubits,
		}
		if b.Gen != nil {
			e.Latency = b.Gen.Latency
			e.Fidelity = b.Gen.Fidelity
			e.Schedule = b.Gen.Schedule
		}
		out = append(out, e)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func loadCircuit(benchName string, args []string) (*circuit.Circuit, error) {
	if benchName != "" {
		spec, ok := bench.ByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (see cmd/paqoc-bench -list)", benchName)
		}
		return spec.Build(), nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: paqoc [flags] <circuit-file> | paqoc -bench <name>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".qasm") {
		return qasm.Parse(string(data))
	}
	return circuit.Parse(string(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paqoc:", err)
	os.Exit(1)
}
