// Quickstart: build a small circuit, lower it onto a device, compile it
// with PAQOC, and inspect the customized gates and their pulses.
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/circuit"
	"paqoc/internal/paqoc"
	"paqoc/internal/route"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	// A 3-qubit GHZ-style circuit with some phase structure.
	c := circuit.New(3)
	c.Add("h", 0)
	c.Add("cx", 0, 1)
	c.Add("cx", 1, 2)
	c.AddParam("rz", []float64{0.5}, 2)
	c.Add("cx", 1, 2)
	c.Add("cx", 0, 1)
	c.Add("h", 0)

	// Lower onto a 2×2 grid device: universal basis + SABRE routing.
	topo := topology.Grid(2, 2)
	phys, routed, err := transpile.ToPhysical(c, topo, route.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("physical circuit: %d gates (%d swaps inserted)\n", len(phys.Gates), routed.SwapCount)

	// Compile: criticality-aware merging with the calibrated pulse model.
	cfg := paqoc.DefaultConfig()
	cfg.M = paqoc.MInf // let the miner find recurring patterns too
	compiler := paqoc.New(nil, topo, cfg)
	res, err := compiler.CompileCtx(context.Background(), phys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("latency: %.0f dt (was %.0f dt gate-by-gate)\n", res.Latency, res.InitialLatency)
	fmt.Printf("estimated success probability: %.4f\n", res.ESP)
	fmt.Println("customized gates:")
	for i, b := range res.Blocks.Blocks {
		fmt.Printf("  %2d  %5.0f dt  %s\n", i, b.Latency, b.Custom().Describe())
	}
}
