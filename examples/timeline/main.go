// Timeline walkthrough: compile a QFT fragment and render the whole-circuit
// pulse timeline — the constructive witness of the reported latency (its
// makespan equals the weighted critical path) — together with the idle-time
// dephasing refinement.
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/bench"
	"paqoc/internal/paqoc"
	"paqoc/internal/pulsesim"
	"paqoc/internal/route"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	logical := bench.QFT(5)
	topo := topology.Grid(3, 3)
	phys, _, err := transpile.ToPhysical(logical, topo, route.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := paqoc.DefaultConfig()
	cfg.M = paqoc.MInf
	res, err := paqoc.New(nil, topo, cfg).CompileCtx(context.Background(), phys)
	if err != nil {
		log.Fatal(err)
	}

	tl, err := res.Blocks.Timeline()
	if err != nil {
		log.Fatal(err)
	}
	if err := tl.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qft(5): %d customized gates, makespan %.0f dt (= critical path %.0f dt)\n",
		res.NumBlocks, tl.Makespan, res.Latency)
	fmt.Printf("peak concurrency: %d blocks in flight\n\n", tl.Concurrency())
	fmt.Print(tl.RenderASCII(topo.NumQubits, 32))

	idle := pulsesim.IdleDephasing(tl, topo.NumQubits, pulsesim.DefaultT2)
	fmt.Printf("\nESP %.4f × idle-dephasing %.4f → refined success estimate %.4f\n",
		res.ESP, idle, res.ESP*idle)
}
