// End-to-end verification demo: compile Bernstein–Vazirani with PAQOC,
// then confirm on the statevector simulator that the compiled (merged)
// circuit still measures the hidden secret with certainty, and sample
// measurement shots — the kind of check a user would run before trusting
// a compiled program.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"paqoc/internal/bench"
	"paqoc/internal/paqoc"
	"paqoc/internal/route"
	"paqoc/internal/statevec"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	secret := []bool{true, false, true, true, false, true}
	logical := bench.BV(len(secret), secret)
	topo := topology.Grid(3, 3)
	phys, _, err := transpile.ToPhysical(logical, topo, route.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	cfg := paqoc.DefaultConfig()
	cfg.M = paqoc.MInf
	compiler := paqoc.New(nil, topo, cfg)
	res, err := compiler.CompileCtx(context.Background(), phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bv(%d): %d physical gates → %d customized gates, latency %.0f dt (was %.0f)\n",
		len(secret), len(phys.Gates), res.NumBlocks, res.Latency, res.InitialLatency)

	// Simulate the compiled circuit and the original logical circuit.
	compiled := res.Blocks.Flatten()
	sPhys, err := statevec.Run(compiled)
	if err != nil {
		log.Fatal(err)
	}
	sLogical, err := statevec.Run(logical)
	if err != nil {
		log.Fatal(err)
	}

	// The routed circuit permutes qubits; compare measurement statistics
	// of the data register via sampling instead of amplitudes.
	rng := rand.New(rand.NewSource(7))
	countsL := statevec.Counts(sLogical.Sample(rng, 2000), logical.NumQubits)
	fmt.Println("\nlogical-circuit measurement (top outcomes, data register + ancilla):")
	printTop(countsL, 3)

	// The compiled circuit acts on device qubits; its distribution over
	// the full register concentrates on one outcome exactly like the
	// logical one (up to the routing permutation).
	countsP := statevec.Counts(sPhys.Sample(rng, 2000), compiled.NumQubits)
	fmt.Println("compiled-circuit measurement (top outcomes, device register):")
	printTop(countsP, 3)

	if peak(countsL) < 1990 || peak(countsP) < 1990 {
		log.Fatal("BV should be deterministic — compilation broke the program")
	}
	fmt.Println("\nboth circuits are deterministic: compilation preserved the program ✓")
}

func printTop(counts map[string]int, k int) {
	type kv struct {
		key string
		n   int
	}
	var all []kv
	for s, n := range counts {
		all = append(all, kv{s, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	for i, e := range all {
		if i >= k {
			break
		}
		fmt.Printf("  %s  %4d shots\n", e.key, e.n)
	}
}

func peak(counts map[string]int) int {
	mx := 0
	for _, n := range counts {
		if n > mx {
			mx = n
		}
	}
	return mx
}
