// Miner walkthrough on Bernstein–Vazirani: after routing onto a sparse
// device, the physical circuit is dominated by SWAP traffic, and the miner
// recovers the three-concatenated-CX SWAP idiom as the top APA-basis gate
// — exactly the paper's Table III observation for bv.
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/bench"
	"paqoc/internal/mining"
	"paqoc/internal/route"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	spec, _ := bench.ByName("bv")
	logical := spec.Build()
	topo := topology.Grid(5, 5)
	phys, routed, err := transpile.ToPhysical(logical, topo, route.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bv: %d logical gates → %d physical gates (%d swaps inserted by SABRE)\n",
		len(logical.Gates), len(phys.Gates), routed.SwapCount)

	patterns, err := mining.MineCtx(context.Background(), phys, mining.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d frequent patterns; top five by coverage:\n", len(patterns))
	for i, p := range patterns {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d support %-3d coverage %-4d %d gates / %d qubits: %s\n",
			i+1, p.Support, p.Coverage(), p.GateCount, p.QubitCount, p.Signature)
	}

	// How many gates would the APA replacement absorb at each M?
	for _, m := range []int{1, 2, -1} {
		sels := mining.Select(phys, patterns, m, 2)
		covered := 0
		for _, s := range sels {
			covered += s.CoveredGates()
		}
		label := fmt.Sprint("M=", m)
		if m < 0 {
			label = "M=inf"
		}
		fmt.Printf("  %-6s %d patterns cover %d/%d gates\n", label, len(sels), covered, len(phys.Gates))
	}
	fmt.Printf("tuned M: %d\n", mining.TunedM(phys, patterns, 2))
}
