// QAOA offline/online compilation: the variational workload that motivates
// PAQOC's split pipeline (§I contribution 5). The frequent-subcircuit
// miner runs ONCE on the symbolic circuit (angles unbound); each
// optimizer iteration then binds fresh angles and compiles online, reusing
// the offline APA selections. The recurring CPHASE idiom (cx; rz; cx) is
// discovered automatically — no depth parameter needed (contrast Fig. 13).
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/bench"
	"paqoc/internal/mining"
	"paqoc/internal/paqoc"
	"paqoc/internal/topology"
)

func main() {
	const n = 6
	topo := topology.FullyConnected(n) // all-to-all for clarity; see cmd/paqoc for routed flows

	// ── Offline: mine the parameterized circuit once ──────────────────
	symbolic := bench.QAOAMaxcutSymbolic(n)
	patterns, err := mining.MineCtx(context.Background(), symbolic, mining.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline mining on the symbolic circuit: %d patterns\n", len(patterns))
	for i, p := range patterns {
		if i >= 2 {
			break
		}
		fmt.Printf("  #%d support %d: %s\n", i+1, p.Support, p.Signature)
	}
	selections := mining.Select(symbolic, patterns, -1, 2)

	// ── Online: one compile per optimizer iteration ───────────────────
	angles := []struct{ gamma, beta float64 }{
		{0.30, 0.80}, {0.55, 0.62}, {0.73, 0.41},
	}
	for iter, a := range angles {
		bound := symbolic.Bind(map[string]float64{"gamma": a.gamma, "beta": a.beta})
		cfg := paqoc.DefaultConfig()
		cfg.Preselected = selections
		compiler := paqoc.New(nil, topo, cfg)
		res, err := compiler.CompileCtx(context.Background(), bound)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %d (γ=%.2f β=%.2f): latency %.0f dt, %d customized gates, online cost %.2fs (offline %.2fs)\n",
			iter, a.gamma, a.beta, res.Latency, res.NumBlocks, res.CompileCost, res.OfflineCost)
	}
}
