// Crosstalk compensation: the paper argues (§II-C) that once hardware
// error terms are calibrated, "we only have to update Equation (1) and
// apply the same method". This example adds an always-on ZZ crosstalk term
// to the device Hamiltonian and compares CX pulses calibrated on the ideal
// model (degraded when replayed on the real device) against pulses
// calibrated directly on the crosstalk-aware model.
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/linalg"
	"paqoc/internal/quantum"
)

func main() {
	pairs := hamiltonian.LinearChain(2)
	noisy, err := hamiltonian.XYTransmon(2, pairs).
		WithZZCrosstalk(pairs, 3*hamiltonian.TypicalZZCrosstalk)
	if err != nil {
		log.Fatal(err)
	}
	ideal := noisy.IdealTwin()
	target := quantum.MatCX.Clone()
	opts := grape.DefaultOptions()

	naive, _, naiveFid, err := grape.MinimumTimeCtx(context.Background(), ideal, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	// Replay the ideal-calibrated pulse on the noisy hardware.
	u := linalg.Identity(4)
	amps := make([]float64, len(noisy.Controls))
	for j := 0; j < naive.NumSlices(); j++ {
		for k := range amps {
			amps[k] = naive.Amps[k][j]
		}
		u = noisy.Propagator(amps, naive.SliceDt).Mul(u)
	}
	onHW := linalg.TraceFidelity(target, u)

	awareSched, awareLat, awareFid, err := grape.MinimumTimeCtx(context.Background(), noisy, target, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CX under 3× typical always-on ZZ crosstalk:")
	fmt.Printf("  ideal-calibrated pulse:  %.6f in calibration, %.6f on hardware\n", naiveFid, onHW)
	fmt.Printf("  crosstalk-aware pulse:   %.6f on hardware (%.0f dt)\n", awareFid, awareLat)
	fmt.Println("\ncrosstalk-aware CX drive channels:")
	fmt.Print(awareSched.RenderASCII())
}
