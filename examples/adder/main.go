// Cuccaro-adder walkthrough: PAQOC's miner rediscovers the MAJ and UMA
// building blocks of the ripple-carry adder (the paper's Table III), and
// the criticality-aware merger then compresses the routed circuit.
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/bench"
	"paqoc/internal/mining"
	"paqoc/internal/paqoc"
	"paqoc/internal/route"
	"paqoc/internal/topology"
	"paqoc/internal/transpile"
)

func main() {
	logical := bench.CuccaroAdder(4) // 4-bit adder on 10 qubits
	topo := topology.Grid(4, 3)
	phys, _, err := transpile.ToPhysical(logical, topo, route.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-bit Cuccaro adder: %d logical gates → %d physical gates\n",
		len(logical.Gates), len(phys.Gates))

	patterns, err := mining.MineCtx(context.Background(), phys, mining.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most frequent subcircuits (MAJ/UMA internals):")
	for i, p := range patterns {
		if i >= 3 {
			break
		}
		fmt.Printf("  #%d support %-3d %d gates on %d qubits: %s\n",
			i+1, p.Support, p.GateCount, p.QubitCount, p.Signature)
	}

	for _, m := range []int{0, paqoc.MInf} {
		cfg := paqoc.DefaultConfig()
		cfg.M = m
		compiler := paqoc.New(nil, topo, cfg)
		res, err := compiler.CompileCtx(context.Background(), phys)
		if err != nil {
			log.Fatal(err)
		}
		name := "paqoc(M=0)  "
		if m == paqoc.MInf {
			name = "paqoc(M=inf)"
		}
		fmt.Printf("%s latency %6.0f dt (fixed-gate %6.0f), blocks %3d, online compile %.2fs\n",
			name, res.Latency, res.InitialLatency, res.NumBlocks, res.CompileCost)
	}
}
