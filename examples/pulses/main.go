// Pulse-level showcase: run the real GRAPE optimizer on the motivating
// example of Fig. 2 — pulses for the consolidated H;CX unitary beat the
// stitched per-gate pulses — and verify the schedule by propagating it
// through the device Hamiltonian (the QuTiP-substitute simulator).
package main

import (
	"context"
	"fmt"
	"log"

	"paqoc/internal/grape"
	"paqoc/internal/hamiltonian"
	"paqoc/internal/pulsesim"
	"paqoc/internal/quantum"
)

func main() {
	opts := grape.DefaultOptions()

	sys1 := hamiltonian.XYTransmon(1, nil)
	_, hLat, hFid, err := grape.MinimumTimeCtx(context.Background(), sys1, quantum.MatH.Clone(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H pulse:        %3.0f dt at fidelity %.4f\n", hLat, hFid)

	sys2 := hamiltonian.XYTransmon(2, hamiltonian.LinearChain(2))
	cxSched, cxLat, cxFid, err := grape.MinimumTimeCtx(context.Background(), sys2, quantum.MatCX.Clone(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CX pulse:       %3.0f dt at fidelity %.4f\n", cxLat, cxFid)

	merged := quantum.MatCX.Mul(quantum.MatH.Kron(quantum.MatI))
	mSched, mLat, mFid, err := grape.MinimumTimeCtx(context.Background(), sys2, merged, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged H+CX:    %3.0f dt at fidelity %.4f\n", mLat, mFid)
	fmt.Printf("stitched total: %3.0f dt → merging saves %.0f%% (paper: 170 vs 110 dt)\n",
		hLat+cxLat, 100*(1-mLat/(hLat+cxLat)))

	// Independent verification: replay both schedules through the
	// Hamiltonian and measure realized fidelity.
	u, err := pulsesim.EvolveCtx(context.Background(), sys2, cxSched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CX schedule replayed:     fidelity %.6f\n", pulsesim.GateFidelity(quantum.MatCX, u))
	u, err = pulsesim.EvolveCtx(context.Background(), sys2, mSched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged schedule replayed: fidelity %.6f\n", pulsesim.GateFidelity(merged, u))
}
